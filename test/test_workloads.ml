(* Tests for pf_workloads: every benchmark runs, is deterministic, has
   the control structures its paper role requires, and — for three of
   them — computes results that match independent OCaml oracles reading
   the same initialised memory. *)

open Pf_workloads

let case name f = Alcotest.test_case name `Quick f

let all = Suite.all ()

let find name = List.find (fun w -> w.Workload.name = name) all

(* ------------------------------------------------------------------ *)
(* Generic suite-wide checks                                           *)

let test_names_unique () =
  let names = List.map (fun w -> w.Workload.name) all in
  (* 12 SPEC-shaped kernels + 9 registered loop-nest family members *)
  Alcotest.(check int) "twenty-one workloads" 21 (List.length names);
  Alcotest.(check int) "unique names" 21
    (List.length (List.sort_uniq compare names));
  Alcotest.(check int) "twelve SPEC kernels" 12 (List.length Suite.spec_names);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "spec kernel %s registered" n)
        true (List.mem n names))
    Suite.spec_names

let test_every_workload_runs_long_enough () =
  List.iter
    (fun w ->
      let m = Pf_isa.Machine.create w.Workload.program in
      w.Workload.setup m;
      let n =
        Pf_isa.Machine.skip m (w.Workload.fast_forward + w.Workload.window)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s covers fast-forward + window" w.Workload.name)
        (w.Workload.fast_forward + w.Workload.window)
        n)
    all

let test_every_workload_deterministic () =
  List.iter
    (fun w ->
      let capture () =
        let m = Pf_isa.Machine.create w.Workload.program in
        w.Workload.setup m;
        let tr = Pf_trace.Tracer.capture m ~fast_forward:500 ~window:2_000 in
        Array.map (fun d -> (d.Pf_trace.Dyn.pc, d.Pf_trace.Dyn.addr)) tr.Pf_trace.Tracer.dyns
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s trace is reproducible" w.Workload.name)
        true
        (capture () = capture ()))
    all

(* The control structures each benchmark's paper role requires. *)
let expected_categories =
  let open Pf_core.Spawn_point in
  [ ("bzip2", [ Loop_iter; Loop_ft; Hammock ]);
    ("crafty", [ Hammock; Other ]);
    ("gap", [ Proc_ft ]);
    ("gcc", [ Proc_ft; Hammock; Other; Loop_iter ]);
    ("gzip", [ Loop_iter; Loop_ft; Hammock ]);
    ("mcf", [ Hammock; Loop_iter ]);
    ("parser", [ Proc_ft; Loop_iter ]);
    ("perlbmk", [ Other; Loop_iter ]);
    ("twolf", [ Loop_iter; Loop_ft; Proc_ft; Hammock; Other ]);
    ("vortex", [ Proc_ft ]);
    ("vpr.place", [ Hammock; Loop_iter ]);
    ("vpr.route", [ Loop_iter; Loop_ft; Hammock ]) ]

let test_expected_spawn_categories () =
  List.iter
    (fun (name, cats) ->
      let w = find name in
      let spawns = Pf_core.Classify.spawn_points w.Workload.program in
      let present = List.map (fun s -> s.Pf_core.Spawn_point.category) spawns in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has %s spawn points" name
               (Pf_core.Spawn_point.category_name c))
            true (List.mem c present))
        cats)
    expected_categories

let test_perlbmk_has_indirect_jumps () =
  let w = find "perlbmk" in
  let p = w.Workload.program in
  let indirect = ref false in
  Array.iter
    (fun i -> if Pf_isa.Instr.is_indirect_jump i then indirect := true)
    p.Pf_isa.Program.code;
  Alcotest.(check bool) "dispatch uses an indirect jump" true !indirect

let test_gap_code_exceeds_l1i () =
  List.iter
    (fun name ->
      let w = find name in
      let bytes = 4 * Pf_isa.Program.length w.Workload.program in
      Alcotest.(check bool)
        (Printf.sprintf "%s code (%d bytes) exceeds the 8 KB L1I" name bytes)
        true (bytes > 8192))
    [ "gap"; "vortex" ]

(* ------------------------------------------------------------------ *)
(* Semantic oracles: run a workload to completion and compare its      *)
(* result with an independent OCaml computation over the same memory.  *)

let run_to_halt w =
  let m = Pf_isa.Machine.create w.Workload.program in
  w.Workload.setup m;
  m

let finish m =
  ignore (Pf_isa.Machine.run m ~max_instrs:5_000_000 ~on_event:ignore);
  Alcotest.(check bool) "halted" true (Pf_isa.Machine.halted m)

let test_mcf_oracle () =
  let w = find "mcf" in
  let m = run_to_halt w in
  (* recompute by walking the chain exactly as the kernel does; the mcf
     kernel never writes memory, so reading afterwards is equivalent *)
  let head_addr = w.Workload.result_addr + 8 in
  let start = Pf_isa.Machine.read_i64 m head_addr in
  let node = ref (Int64.to_int start) in
  let acc = ref 0L in
  for _ = 1 to 8000 do
    let v = Pf_isa.Machine.read_i64 m (!node + 8) in
    if Int64.logand v 3L = 0L then
      acc := Int64.add !acc (Int64.shift_right v 3)
    else acc := Int64.logxor !acc v;
    if Int64.logand v 7L < 3L then
      acc := Int64.add !acc (Pf_isa.Machine.read_i64 m (!node + 16));
    node := Int64.to_int (Pf_isa.Machine.read_i64 m !node)
  done;
  finish m;
  Alcotest.(check int64) "mcf result matches the oracle" !acc
    (Pf_isa.Machine.read_i64 m w.Workload.result_addr)

let test_bzip2_oracle () =
  let w = find "bzip2" in
  let m = run_to_halt w in
  (* snapshot the data array before running *)
  let data_base = w.Workload.result_addr + 8 in
  let data = Array.init 1024 (fun k -> Pf_isa.Machine.read_i64 m (data_base + (8 * k))) in
  let acc = ref 0L in
  for k = 0 to 6999 do
    let x = ref data.(k land 1023) in
    let run = ref 0 in
    while Int64.logand !x 1L = 1L && !run < 8 do
      x := Int64.shift_right !x 1;
      incr run
    done;
    if !run > 2 then acc := Int64.add !acc (Int64.of_int !run)
    else acc := Int64.logxor !acc !x
  done;
  finish m;
  Alcotest.(check int64) "bzip2 result matches the oracle" !acc
    (Pf_isa.Machine.read_i64 m w.Workload.result_addr)

let test_twolf_oracle () =
  let w = find "twolf" in
  let m = run_to_halt w in
  (* reconstruct the linked structure from initialised memory *)
  let rd a = Pf_isa.Machine.read_i64 m a in
  let head_addr = w.Workload.result_addr + 16 in
  (* globals: result, cost, head, new_mean, old_mean, ... in layout order *)
  let head = Int64.to_int (rd head_addr) in
  let new_mean = rd (head_addr + 8) and old_mean = rd (head_addr + 16) in
  (* collect the (xpos, newx, shadow) triple of every net in list order *)
  let nets = ref [] in
  let term = ref head in
  (* the nets region starts at the first term's first net; flag_init
     follows it immediately (24 terms x 5 slots x 32 bytes) *)
  let first_dim = Int64.to_int (rd (head + 8)) in
  let nets_base = ref (Int64.to_int (rd first_dim)) in
  let flag_init = !nets_base + (24 * 5 * 32) in
  term := head;
  while !term <> 0 do
    let dim = Int64.to_int (rd (!term + 8)) in
    let net = ref (Int64.to_int (rd dim)) in
    while !net <> 0 do
      let slot = (!net - !nets_base) / 32 in
      nets :=
        (rd (!net + 8), rd (!net + 24), rd (flag_init + (8 * slot))) :: !nets;
      net := Int64.to_int (rd !net)
    done;
    term := Int64.to_int (rd !term)
  done;
  let nets = List.rev !nets in
  let abs v = if Int64.compare v 0L < 0 then Int64.neg v else v in
  let cost = ref 0L in
  for rep = 0 to 199 do
    List.iter
      (fun (xpos, newx_field, shadow) ->
        let flag =
          Int64.logand (Int64.shift_right_logical shadow (rep land 31)) 3L = 0L
        in
        let newx = if flag then newx_field else xpos in
        let d1 = abs (Int64.sub newx new_mean) in
        let d2 = abs (Int64.sub xpos old_mean) in
        cost := Int64.sub (Int64.add !cost d1) d2)
      nets
  done;
  finish m;
  Alcotest.(check int64) "twolf cost matches the oracle" !cost
    (Pf_isa.Machine.read_i64 m w.Workload.result_addr)

(* Every workload is built from Mini source ([Workload.mini]), so each
   one is a differential test: interpret the source, run the compiled
   binary to completion, and compare every word of every user global.
   The interpreter sees the setup-initialised memory as [init_mem] (a
   snapshot of the non-zero words the setup wrote). *)
let test_all_workloads_match_interpreter () =
  List.iter
    (fun w ->
      match w.Workload.mini with
      | None -> Alcotest.failf "%s lost its Mini source" w.Workload.name
      | Some ast ->
          let compiled = Pf_mini.Compile.compile ast in
          let m = Pf_isa.Machine.create compiled.Pf_mini.Compile.program in
          w.Workload.setup m;
          let init_mem = ref [] in
          let top = Pf_isa.Machine.mem_size m - 8 in
          let a = ref 0 in
          while !a <= top do
            let v = Pf_isa.Machine.read_i64 m !a in
            if v <> 0L then init_mem := (!a, v) :: !init_mem;
            a := !a + 8
          done;
          let out =
            Pf_mini.Interp.run ~fuel:200_000_000 ~init_mem:!init_mem ast
          in
          ignore (Pf_isa.Machine.run m ~max_instrs:20_000_000 ~on_event:ignore);
          Alcotest.(check bool)
            (Printf.sprintf "%s halts" w.Workload.name)
            true
            (Pf_isa.Machine.halted m);
          let address_of = compiled.Pf_mini.Compile.address_of in
          List.iter
            (fun (g, size) ->
              let base = address_of g in
              if size = 8 then
                Alcotest.(check int64)
                  (Printf.sprintf "%s global %s" w.Workload.name g)
                  (out.Pf_mini.Interp.read_global g)
                  (Pf_isa.Machine.read_i64 m base)
              else
                for k = 0 to (size / 8) - 1 do
                  Alcotest.(check int64)
                    (Printf.sprintf "%s global %s word %d" w.Workload.name g k)
                    (out.Pf_mini.Interp.read_mem (base + (8 * k)))
                    (Pf_isa.Machine.read_i64 m (base + (8 * k)))
                done)
            ast.Pf_mini.Ast.globals)
    all

(* ------------------------------------------------------------------ *)
(* End-to-end simulation sanity on a reduced window                    *)

let test_all_workloads_simulate () =
  (* run under the engine's self-check so counter accounting is validated
     across every workload *)
  Unix.putenv "PF_CHECK" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "PF_CHECK" "")
  @@ fun () ->
  List.iter
    (fun w ->
      let prep =
        Pf_uarch.Run.prepare w.Workload.program ~setup:w.Workload.setup
          ~fast_forward:1_000 ~window:6_000
      in
      let base = Pf_uarch.Run.baseline prep in
      let ipc = Pf_uarch.Metrics.ipc base in
      Alcotest.(check bool)
        (Printf.sprintf "%s baseline IPC %.2f plausible" w.Workload.name ipc)
        true
        (ipc > 0.1 && ipc < 8.0);
      let pd = Pf_uarch.Run.simulate prep ~policy:Pf_core.Policy.Postdoms in
      Alcotest.(check int)
        (Printf.sprintf "%s postdoms retires the window" w.Workload.name)
        base.Pf_uarch.Metrics.instructions pd.Pf_uarch.Metrics.instructions)
    all

(* Cross-module invariant: no simulated configuration can exceed the
   dataflow-oracle ILP limit (infinite window/FUs, L1-hit loads). *)
let test_engine_below_oracle_limit () =
  List.iter
    (fun w ->
      let prep =
        Pf_uarch.Run.prepare w.Workload.program ~setup:w.Workload.setup
          ~fast_forward:1_000 ~window:6_000
      in
      let oracle = Pf_trace.Limits.dataflow_ipc prep.Pf_uarch.Run.trace in
      List.iter
        (fun policy ->
          let m = Pf_uarch.Run.simulate prep ~policy in
          let ipc = Pf_uarch.Metrics.ipc m in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s IPC %.2f <= oracle %.2f" w.Workload.name
               (Pf_core.Policy.name policy) ipc oracle)
            true
            (ipc <= oracle +. 1e-6))
        [ Pf_core.Policy.No_spawn; Pf_core.Policy.Postdoms;
          Pf_core.Policy.Rec_pred ])
    all

(* ------------------------------------------------------------------ *)
(* The loop-nest family: every constructor parameter must yield a      *)
(* distinct workload. The run cache keys its digest on the workload    *)
(* name, so parameter-distinct names are what keeps a distance-4 nest  *)
(* from replaying a distance-0 nest's cached run.                      *)

let loopnest_combos =
  List.concat_map
    (fun distance ->
      List.concat_map
        (fun stride ->
          List.map (fun depth -> (distance, stride, depth)) [ 1; 2; 3 ])
        [ Loopnest.Unit; Loopnest.Strided; Loopnest.Indirect ])
    Loopnest.distances

let test_loopnest_names_key_every_parameter () =
  let names =
    List.map
      (fun (distance, stride, depth) -> Loopnest.name ~distance ~stride ~depth)
      loopnest_combos
  in
  Alcotest.(check int) "every distance/stride/depth combination named"
    (List.length loopnest_combos)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("stride name round trip: " ^ Loopnest.stride_name s)
        true
        (Loopnest.stride_of_name (Loopnest.stride_name s) = Some s))
    [ Loopnest.Unit; Loopnest.Strided; Loopnest.Indirect ]

let test_loopnest_programs_distinct () =
  (* a parameter that changed the name must also change the generated
     program: distance adds carried reads, stride rewrites the gather,
     depth restructures the nest *)
  let progs =
    List.map
      (fun (distance, stride, depth) ->
        ( Loopnest.name ~distance ~stride ~depth,
          Loopnest.program ~distance ~stride ~depth ))
      loopnest_combos
  in
  List.iteri
    (fun i (ni, pi) ->
      List.iteri
        (fun j (nj, pj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s generate different programs" ni nj)
              false (pi = pj))
        progs)
    progs

let test_loopnest_rejects_bad_parameters () =
  let rejects f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "carry span beyond the warm prefix rejected" true
    (rejects (fun () ->
         Loopnest.program ~distance:9 ~stride:Loopnest.Unit ~depth:1));
  Alcotest.(check bool) "negative carry span rejected" true
    (rejects (fun () ->
         Loopnest.program ~distance:(-1) ~stride:Loopnest.Unit ~depth:1));
  Alcotest.(check bool) "depth 4 rejected" true
    (rejects (fun () ->
         Loopnest.program ~distance:1 ~stride:Loopnest.Unit ~depth:4))

let test_loopnest_sweep_registered () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep member %s registered in the suite" n)
        true
        (Suite.find n <> None))
    Loopnest.sweep_names;
  (* the distance sweep must cover a DOALL nest and a far carry *)
  Alcotest.(check bool) "sweep starts at distance 0" true
    (List.mem "loopnest.d0.unit.n1" Loopnest.sweep_names);
  Alcotest.(check bool) "sweep reaches distance 8" true
    (List.mem "loopnest.d8.unit.n1" Loopnest.sweep_names)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_bool_p_bias () =
  let r = Rng.create ~seed:11 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool_p r 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. 10_000. in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.3 draw frequency %.3f" frac)
    true
    (frac > 0.25 && frac < 0.35)

let test_fill_permutation_is_cycle () =
  let w = find "mcf" in
  let m = Pf_isa.Machine.create w.Workload.program in
  let rng = Rng.create ~seed:99 in
  Workload.fill_permutation rng m ~base:0x200000 ~slots:64 ~stride:16;
  (* following the chain must visit all 64 slots and return to start *)
  let seen = Hashtbl.create 64 in
  let node = ref 0x200000 in
  let steps = ref 0 in
  while not (Hashtbl.mem seen !node) && !steps <= 64 do
    Hashtbl.replace seen !node ();
    node := Int64.to_int (Pf_isa.Machine.read_i64 m !node);
    incr steps
  done;
  Alcotest.(check int) "cycle covers all slots" 64 (Hashtbl.length seen);
  Alcotest.(check bool) "back at a visited slot" true (Hashtbl.mem seen !node)

let suite =
  [ ( "workloads.suite",
      [ case "names unique" test_names_unique;
        case "every workload runs long enough" test_every_workload_runs_long_enough;
        case "traces reproducible" test_every_workload_deterministic;
        case "expected spawn categories" test_expected_spawn_categories;
        case "perlbmk uses indirect jumps" test_perlbmk_has_indirect_jumps;
        case "gap/vortex exceed the L1I" test_gap_code_exceeds_l1i;
        case "all workloads simulate" test_all_workloads_simulate;
        case "all workloads match the interpreter"
          test_all_workloads_match_interpreter ] );
    ( "workloads.oracles",
      [ case "engine below oracle limit" test_engine_below_oracle_limit;
        case "mcf result" test_mcf_oracle;
        case "bzip2 result" test_bzip2_oracle;
        case "twolf cost" test_twolf_oracle ] );
    ( "workloads.loopnest",
      [ case "names key every parameter" test_loopnest_names_key_every_parameter;
        case "programs distinct across parameters"
          test_loopnest_programs_distinct;
        case "bad parameters rejected" test_loopnest_rejects_bad_parameters;
        case "distance sweep registered" test_loopnest_sweep_registered ] );
    ( "workloads.rng",
      [ case "deterministic" test_rng_determinism;
        case "int bounds" test_rng_int_bounds;
        case "bool_p bias" test_rng_bool_p_bias;
        case "permutation is one cycle" test_fill_permutation_is_cycle ] ) ]
