(* Tests for the two-level preparation cache (Pf_trace.Trace_store):
   store-hit and checkpoint-restore preparation must be byte-identical
   to from-scratch preparation — Dyn streams, flat traces and full run
   records — plus key sensitivity, corruption handling and the LRU
   cap. *)

open Pf_trace
module Machine = Pf_isa.Machine
module Trace_store = Pf_trace.Trace_store
module Workload = Pf_workloads.Workload
module Run = Pf_uarch.Run
module Sweep = Pf_report.Sweep
module Json = Pf_report.Json

let case name f = Alcotest.test_case name `Quick f

let temp_store_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pf_trace_store_%d_%d" (Unix.getpid ()) !n)
    in
    let rec rm_rf p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    rm_rf dir;
    dir

let make_store ?cap ?checkpoint_stride ?max_checkpoints () =
  Trace_store.create ?cap ?checkpoint_stride ?max_checkpoints
    ~dir:(temp_store_dir ()) ()

(* From-scratch reference: exactly what Run.prepare does without a
   store. *)
let reference_trace program ~setup ~fast_forward ~window =
  let m = Machine.create program in
  setup m;
  let tr = Tracer.capture m ~fast_forward ~window in
  if Tracer.length tr > 0 then Depinfo.compute tr;
  tr

let check_traces_equal what (a : Tracer.t) (b : Tracer.t) =
  Alcotest.(check int)
    (what ^ ": fast_forwarded") a.Tracer.fast_forwarded b.Tracer.fast_forwarded;
  Alcotest.(check int) (what ^ ": length") (Tracer.length a) (Tracer.length b);
  Array.iteri
    (fun i (da : Dyn.t) ->
      if da <> b.Tracer.dyns.(i) then
        Alcotest.failf "%s: record %d differs (pc %#x vs %#x)" what i
          da.Dyn.pc b.Tracer.dyns.(i).Dyn.pc)
    a.Tracer.dyns

let gzip () = Option.get (Pf_workloads.Suite.find "gzip")

(* ---- store hits ---- *)

let test_store_hit_round_trip () =
  let wl = gzip () in
  let prep ts =
    Trace_store.prepare ts wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:wl.Workload.fast_forward ~window:3_000
  in
  let reference =
    reference_trace wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:wl.Workload.fast_forward ~window:3_000
  in
  let ts = make_store () in
  let cold = prep ts in
  check_traces_equal "miss (from scratch)" reference cold;
  let warm = prep ts in
  check_traces_equal "hit (from disk)" reference warm;
  let s = Trace_store.stats ts in
  Alcotest.(check int) "one miss" 1 s.Trace_store.misses;
  Alcotest.(check int) "one hit" 1 s.Trace_store.hits;
  Alcotest.(check int) "one store" 1 s.Trace_store.stores;
  Alcotest.(check int) "one entry" 1 s.Trace_store.entries;
  Alcotest.(check bool) "bytes counted" true (s.Trace_store.bytes > 0);
  (* a second store over the same directory hits without re-preparing:
     the entry is persistent, not per-process *)
  let ts2 =
    Trace_store.create ~dir:(Trace_store.dir ts) ()
  in
  check_traces_equal "hit (new process image)" reference (prep ts2);
  Alcotest.(check int) "fresh store hits immediately" 1
    (Trace_store.stats ts2).Trace_store.hits;
  (* flat traces built from both paths are structurally identical *)
  Alcotest.(check bool) "flat traces equal" true
    (Flat_trace.of_trace reference = Flat_trace.of_trace warm)

(* ---- checkpoint ladder ---- *)

let test_checkpoint_restore_parity () =
  let wl = gzip () in
  let ts = make_store ~checkpoint_stride:500 () in
  (* first miss populates the ladder while fast-forwarding to 2000 *)
  let _ =
    Trace_store.prepare ts wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:2_000 ~window:1_000
  in
  Alcotest.(check bool) "ladder populated" true
    ((Trace_store.stats ts).Trace_store.checkpoints > 0);
  (* a different fast-forward point misses the store but restores the
     nearest snapshot instead of re-interpreting the prefix *)
  let shifted =
    Trace_store.prepare ts wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:2_400 ~window:1_000
  in
  Alcotest.(check bool) "restored from a checkpoint" true
    ((Trace_store.stats ts).Trace_store.checkpoint_restores > 0);
  check_traces_equal "checkpoint-restore path"
    (reference_trace wl.Workload.program ~setup:wl.Workload.setup
       ~fast_forward:2_400 ~window:1_000)
    shifted

(* ---- key sensitivity ---- *)

let test_digest_sensitivity () =
  let wl = gzip () in
  let ts = make_store () in
  let d ?(program = wl.Workload.program) ?(setup = wl.Workload.setup)
      ?(fast_forward = 2_000) ?(window = 1_000) () =
    Trace_store.digest ts program ~setup ~fast_forward ~window
  in
  let base = d () in
  Alcotest.(check string) "same key is stable" base (d ());
  Alcotest.(check bool) "fast_forward keyed" false
    (base = d ~fast_forward:2_001 ());
  Alcotest.(check bool) "window keyed" false (base = d ~window:1_001 ());
  let other = Option.get (Pf_workloads.Suite.find "mcf") in
  Alcotest.(check bool) "program keyed" false
    (base = d ~program:other.Workload.program ());
  (* the setup is fingerprinted by effect, not by closure identity:
     a different closure with the same writes produces the same key,
     a closure with different writes a different one *)
  let same_effect m = wl.Workload.setup m in
  Alcotest.(check string) "setup keyed by effect" base (d ~setup:same_effect ());
  let different_effect m =
    wl.Workload.setup m;
    Machine.write_i64 m 0x4000 99L
  in
  Alcotest.(check bool) "setup writes change the key" false
    (base = d ~setup:different_effect ())

(* ---- corruption ---- *)

let test_corrupt_entry_is_a_miss () =
  let wl = gzip () in
  let ts = make_store () in
  let prep () =
    Trace_store.prepare ts wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:wl.Workload.fast_forward ~window:2_000
  in
  let reference =
    reference_trace wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:wl.Workload.fast_forward ~window:2_000
  in
  let cold = prep () in
  check_traces_equal "cold" reference cold;
  let digest =
    Trace_store.digest ts wl.Workload.program ~setup:wl.Workload.setup
      ~fast_forward:wl.Workload.fast_forward ~window:2_000
  in
  let path = Trace_store.path ts ~digest in
  let clobber s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let payload =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* truncation, checksum damage and a foreign format version all
     downgrade to a miss that re-prepares and repairs the entry *)
  List.iter
    (fun (what, garbage) ->
      clobber garbage;
      check_traces_equal what reference (prep ());
      Alcotest.(check string) (what ^ ": entry repaired") payload
        (let ic = open_in_bin path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s))
    [ ("truncated", String.sub payload 0 (String.length payload / 2));
      ("flipped byte",
       String.mapi (fun i c -> if i = 40 then Char.chr (Char.code c lxor 1) else c)
         payload);
      ("foreign version",
       (* bump the version field and re-checksum so only the version
          check can reject it *)
       let body =
         String.sub payload 0 (String.length payload - 16)
       in
       let b = Bytes.of_string body in
       Bytes.set_int32_le b 4 (Int32.of_int (Trace_store.format_version + 1));
       let body = Bytes.to_string b in
       body ^ Digest.string body);
      ("garbage", "not a trace at all") ]

(* ---- LRU cap ---- *)

let test_lru_cap () =
  let wl = gzip () in
  let ts = make_store ~cap:2 () in
  List.iter
    (fun window ->
      ignore
        (Trace_store.prepare ts wl.Workload.program ~setup:wl.Workload.setup
           ~fast_forward:wl.Workload.fast_forward ~window))
    [ 1_000; 1_100; 1_200 ];
  let s = Trace_store.stats ts in
  Alcotest.(check int) "capped" 2 s.Trace_store.entries;
  Alcotest.(check int) "one eviction" 1 s.Trace_store.evictions

(* ---- qcheck parity over the fuzz generators ---- *)

let parity_holds ~gen ~seed =
  let program =
    match gen with
    | `Mini ->
        (Pf_fuzz.Gen_mini.generate ~seed () |> Pf_mini.Compile.compile)
          .Pf_mini.Compile.program
    | `Asm -> Pf_fuzz.Gen_asm.generate ~seed
  in
  let setup _ = () in
  let fast_forward = seed mod 300 in
  let window = 1 + (seed mod 2_000) in
  let reference = reference_trace program ~setup ~fast_forward ~window in
  let ts = make_store ~checkpoint_stride:100 () in
  let prep () = Trace_store.prepare ts program ~setup ~fast_forward ~window in
  let fail what =
    QCheck.Test.fail_reportf
      "seed %d (ff %d, window %d): %s differs from from-scratch preparation"
      seed fast_forward window what
  in
  let eq (a : Tracer.t) (b : Tracer.t) =
    a.Tracer.fast_forwarded = b.Tracer.fast_forwarded
    && a.Tracer.dyns = b.Tracer.dyns
  in
  if not (eq reference (prep ())) then fail "store miss";
  if not (eq reference (prep ())) then fail "store hit";
  (* a shifted fast-forward takes the checkpoint-restore path when the
     ladder has a usable snapshot *)
  let shifted = fast_forward + 50 in
  let ref_shifted =
    reference_trace program ~setup ~fast_forward:shifted ~window
  in
  let got =
    Trace_store.prepare ts program ~setup ~fast_forward:shifted ~window
  in
  if not (eq ref_shifted got) then fail "checkpoint-restore miss";
  true

let prop_parity_mini =
  QCheck.Test.make
    ~name:"trace store is invisible on mini programs" ~count:5
    QCheck.(int_range 1 100_000)
    (fun seed -> parity_holds ~gen:`Mini ~seed)

let prop_parity_asm =
  QCheck.Test.make
    ~name:"trace store is invisible on asm programs" ~count:5
    QCheck.(int_range 1 100_000)
    (fun seed -> parity_holds ~gen:`Asm ~seed)

(* ---- every workload: Dyn streams, flat traces, full run records ---- *)

let test_all_workloads_parity () =
  let ts = make_store () in
  List.iter
    (fun name ->
      let wl = Option.get (Pf_workloads.Suite.find name) in
      let window = min 8_000 wl.Workload.window in
      let reference =
        Run.prepare wl.Workload.program ~setup:wl.Workload.setup
          ~fast_forward:wl.Workload.fast_forward ~window
      in
      let via_store () =
        Run.prepare ~store:ts wl.Workload.program ~setup:wl.Workload.setup
          ~fast_forward:wl.Workload.fast_forward ~window
      in
      let check_prep what (prep : Run.prepared) =
        check_traces_equal (name ^ " " ^ what) reference.Run.trace
          prep.Run.trace;
        if reference.Run.flat <> prep.Run.flat then
          Alcotest.failf "%s %s: flat trace differs" name what;
        (* the run record — metrics serialized exactly as reports and
           the run cache store them — must be byte-identical *)
        let record p =
          Json.to_string
            (Pf_report.Codec.metrics_to_json
               (Run.simulate p ~policy:Pf_core.Policy.Postdoms))
        in
        Alcotest.(check string)
          (name ^ " " ^ what ^ ": run record")
          (record reference) (record prep)
      in
      check_prep "store miss" (via_store ());
      check_prep "store hit" (via_store ()))
    Pf_workloads.Suite.names;
  let s = Trace_store.stats ts in
  let n = List.length Pf_workloads.Suite.names in
  Alcotest.(check int) "every workload missed once" n s.Trace_store.misses;
  Alcotest.(check int) "every workload hit once" n s.Trace_store.hits

(* ---- the sweep path: cold vs trace-store-warm run documents ---- *)

let test_sweep_parity () =
  let specs =
    [ Sweep.spec "gzip" Pf_core.Policy.Postdoms ~window:3_000;
      Sweep.spec "mcf" Pf_core.Policy.No_spawn ~window:3_000 ]
  in
  let plain, _ = Sweep.execute ~jobs:1 specs in
  let ts = make_store () in
  let cold, _ = Sweep.execute ~trace_store:ts ~jobs:1 specs in
  let warm, _ = Sweep.execute ~trace_store:ts ~jobs:1 specs in
  (* run records carry no timing except wall_s; zero it so the
     comparison is over the simulation results only *)
  let strip (r : Sweep.run) =
    Json.to_string (Sweep.run_to_json { r with Sweep.wall_s = 0. })
  in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "trace-store cold run record" (strip a)
        (strip b))
    plain cold;
  List.iter2
    (fun a b ->
      Alcotest.(check string) "trace-store warm run record" (strip a)
        (strip b))
    plain warm;
  Alcotest.(check bool) "the second sweep hit the store" true
    ((Trace_store.stats ts).Trace_store.hits > 0)

let suite =
  [ ( "trace_store",
      [ case "store hit round trip" test_store_hit_round_trip;
        case "checkpoint restore parity" test_checkpoint_restore_parity;
        case "digest sensitivity" test_digest_sensitivity;
        case "corrupt entries downgrade to misses" test_corrupt_entry_is_a_miss;
        case "LRU cap" test_lru_cap;
        Prop.to_alcotest prop_parity_mini;
        Prop.to_alcotest prop_parity_asm ] );
    ( "trace_store.parity",
      [ case "every workload, every path" test_all_workloads_parity;
        case "sweep records unchanged" test_sweep_parity ] ) ]
