(* Skip parity: the event-skipping cycle loop (stall-skip to the next
   scheduled event, plus the ready_at / drain_blocker sweep caches) is a
   pure optimisation. [Config.no_event_skip] forces the engine back to
   one-cycle-at-a-time stepping; against that reference build the
   optimised loop must produce bit-identical

     - metrics (every field, cycles included),
     - the full retire stream, with per-retire cycle and slot,
     - the CPI-stack rows (cycle accounting per slot and reason), and
     - the named counter registry,

   for every policy class. The property runs over the pf_fuzz program
   generators (fresh control flow every seed) and over a real workload
   window, so both synthetic and realistic schedules are covered. *)

open Pf_uarch
module Policy = Pf_core.Policy
module Sink = Pf_obs.Sink
module Cpi_stack = Pf_obs.Cpi_stack
module Counters = Pf_obs.Counters

let window = 2_500
let max_instrs = 6_000_000

(* One class per policy constructor, as the fuzz oracle uses. *)
let all_policies = Pf_fuzz.Oracle.all_policies

(* [Run.simulate]'s per-policy default, made explicit so both runs of a
   pair share the same base configuration. *)
let base_config = function
  | Policy.No_spawn -> Config.superscalar
  | Policy.Adaptive -> Config.adaptive
  | Policy.Doacross -> Config.doacross
  | _ -> Config.polyflow

type observed = {
  metrics : Metrics.t;
  retires : string;  (* "cycle:slot:index;" per retirement, in order *)
  cpi_rows : int array array;
  counters : (string * int) list;
}

let observe prep ~policy ~config =
  let retires = Buffer.create 1024 in
  let cpi = Cpi_stack.create () in
  let counters = Counters.create () in
  let sink =
    Sink.tee (Cpi_stack.sink cpi)
      { Sink.null with
        on_retire =
          (fun ~cycle ~slot ~index ->
            Buffer.add_string retires
              (Printf.sprintf "%d:%d:%d;" cycle slot index)) }
  in
  let metrics = Run.simulate ~sink ~counters ~config prep ~policy in
  { metrics;
    retires = Buffer.contents retires;
    cpi_rows = Array.init (Cpi_stack.slots cpi) (Cpi_stack.row cpi);
    counters = Counters.to_alist counters }

(* Compare skipping-on vs the [no_event_skip] reference for one policy;
   [fail] receives a component name and the two runs' cycle counts. *)
let compare_policy prep ~policy ~(fail : string -> int -> int -> 'a) =
  let base = base_config policy in
  let skip = observe prep ~policy ~config:base in
  let ref_ =
    observe prep ~policy ~config:{ base with Config.no_event_skip = true }
  in
  let cycles o = o.metrics.Metrics.cycles in
  let bad what = fail what (cycles skip) (cycles ref_) in
  if skip.metrics <> ref_.metrics then bad "metrics";
  if skip.retires <> ref_.retires then bad "retire stream";
  if skip.cpi_rows <> ref_.cpi_rows then bad "CPI rows";
  if skip.counters <> ref_.counters then bad "counters"

(* ------------------------------------------------------------------ *)
(* qcheck over the fuzz generators                                     *)

let prepare_program program =
  (* cap the window at the program's dynamic length, as the oracle does *)
  let m = Pf_isa.Machine.create program in
  let (_ : int) = Pf_isa.Machine.run m ~max_instrs ~on_event:ignore in
  Run.prepare program
    ~setup:(fun _ -> ())
    ~fast_forward:0
    ~window:(min window (Pf_isa.Machine.icount m))

let holds_for ~gen ~seed =
  let program =
    match gen with
    | `Mini ->
        (Pf_fuzz.Gen_mini.generate ~seed () |> Pf_mini.Compile.compile)
          .Pf_mini.Compile.program
    | `Asm -> Pf_fuzz.Gen_asm.generate ~seed
  in
  let prep = prepare_program program in
  List.iter
    (fun policy ->
      compare_policy prep ~policy ~fail:(fun what c_skip c_ref ->
          QCheck.Test.fail_reportf
            "seed %d, policy %s: %s differ between the event-skipping \
             engine (%d cycles) and no_event_skip (%d cycles)"
            seed (Policy.name policy) what c_skip c_ref))
    all_policies;
  true

let prop_mini =
  QCheck.Test.make ~name:"event skipping is invisible on mini programs"
    ~count:5
    QCheck.(int_range 1 100_000)
    (fun seed -> holds_for ~gen:`Mini ~seed)

let prop_asm =
  QCheck.Test.make ~name:"event skipping is invisible on asm programs"
    ~count:5
    QCheck.(int_range 1 100_000)
    (fun seed -> holds_for ~gen:`Asm ~seed)

(* ------------------------------------------------------------------ *)
(* A real workload window, every policy class                          *)

let test_workload name () =
  let wl = Option.get (Pf_workloads.Suite.find name) in
  let prep =
    Run.prepare wl.Pf_workloads.Workload.program
      ~setup:wl.Pf_workloads.Workload.setup
      ~fast_forward:wl.Pf_workloads.Workload.fast_forward ~window:4_000
  in
  List.iter
    (fun policy ->
      compare_policy prep ~policy ~fail:(fun what c_skip c_ref ->
          Alcotest.failf
            "%s, policy %s: %s differ between the event-skipping engine \
             (%d cycles) and no_event_skip (%d cycles)"
            name (Policy.name policy) what c_skip c_ref))
    all_policies

let suite =
  [ ( "skip-parity",
      [ Prop.to_alcotest prop_mini;
        Prop.to_alcotest prop_asm;
        Alcotest.test_case "gzip window, all policy classes" `Quick
          (test_workload "gzip") ] ) ]
