(* polyflow_fuzz: differential fuzzing for the PolyFlow stack.

   Subcommands:
     run     generate random programs and cross-check the Mini
             interpreter, the architectural machine, and the
             speculative engine against each other
     replay  re-run the oracle on a saved repro file

   Examples:
     polyflow_fuzz run --gen mini --count 200 --seed 42
     polyflow_fuzz run --gen both --count 100000 --time-budget 120
     polyflow_fuzz replay _fuzz/corpus/mini-s42-i17.repro *)

open Pf_fuzz

let parse_policies = function
  | [] -> None
  | names -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Pf_core.Policy.of_string n with
            | Ok p -> parse (p :: acc) rest
            | Error e -> Error e)
      in
      match parse [] names with
      | Ok ps -> Some ps
      | Error e -> raise (Invalid_argument e))

let print_finding (f : Driver.finding) =
  Format.printf "FAIL %s seed %d index %d: %s@.  %s@."
    (Repro.gen_name f.repro.Repro.gen)
    f.repro.Repro.seed f.repro.Repro.index f.repro.Repro.oracle
    f.repro.Repro.detail;
  Option.iter (Format.printf "  repro written to %s@.") f.path

let run_campaign ~gen ~seed ~count ~policies ~loopnest ~corpus ~time_budget
    ~shrink_budget =
  let summary =
    Driver.run ~gen ~seed ~count ?policies ~mini_loopnest:loopnest
      ~corpus_dir:corpus ?time_budget ~shrink_budget ()
  in
  List.iter print_finding summary.Driver.findings;
  Format.printf "fuzz %s: %d programs (seed %d): %s@." (Repro.gen_name gen)
    summary.Driver.executed seed
    (match List.length summary.Driver.findings with
    | 0 -> "ok"
    | n -> Printf.sprintf "%d FAILURE%s" n (if n = 1 then "" else "S"));
  summary.Driver.findings = []

let run_cmd gen_str seed count policy_names loopnest corpus time_budget
    shrink_budget =
  match
    (match gen_str with
    | "mini" -> Ok [ Repro.Mini ]
    | "asm" -> Ok [ Repro.Asm ]
    | "both" -> Ok [ Repro.Mini; Repro.Asm ]
    | s -> Error (Printf.sprintf "unknown generator %S (mini, asm or both)" s))
  with
  | Error e -> `Error (false, e)
  | Ok gens -> (
      match parse_policies policy_names with
      | exception Invalid_argument e -> `Error (false, e)
      | policies ->
          (* split an overall time budget across the frontends *)
          let time_budget =
            Option.map
              (fun b -> b /. float_of_int (List.length gens))
              time_budget
          in
          let ok =
            List.for_all
              (fun gen ->
                run_campaign ~gen ~seed ~count ~policies ~loopnest ~corpus
                  ~time_budget ~shrink_budget)
              gens
          in
          if ok then `Ok () else `Error (false, "oracle failures found"))

let replay_cmd path policy_names =
  match parse_policies policy_names with
  | exception Invalid_argument e -> `Error (false, e)
  | policies -> (
      match Driver.replay ?policies path with
      | Error e -> `Error (false, e)
      | Ok (r, Oracle.Pass) ->
          Format.printf "replay %s (%s seed %d index %d): PASS@." path
            (Repro.gen_name r.Repro.gen)
            r.Repro.seed r.Repro.index;
          `Ok ()
      | Ok (r, Oracle.Fail f) ->
          Format.printf "replay %s (%s seed %d index %d): FAIL %s@.  %s@."
            path
            (Repro.gen_name r.Repro.gen)
            r.Repro.seed r.Repro.index f.Oracle.oracle f.Oracle.detail;
          `Error (false, "repro still fails"))

open Cmdliner

let policy_t =
  Arg.(
    value
    & opt_all string []
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:
          "Restrict the engine checks to $(docv) (repeatable). Default: one \
           representative of every policy class.")

let run_t =
  let gen_t =
    Arg.(
      value & opt string "both"
      & info [ "gen"; "g" ] ~docv:"GEN"
          ~doc:"Generator frontend: $(b,mini), $(b,asm) or $(b,both).")
  in
  let seed_t =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Campaign seed.")
  in
  let count_t =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"Programs to check per frontend.")
  in
  let corpus_t =
    Arg.(
      value
      & opt string "_fuzz/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Where to write repro files.")
  in
  let budget_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop the campaign after $(docv) (split across frontends).")
  in
  let shrink_t =
    Arg.(
      value & opt int 500
      & info [ "shrink-budget" ] ~docv:"TRIALS"
          ~doc:"Shrink-candidate trials per Mini finding.")
  in
  let loopnest_t =
    Arg.(
      value & flag
      & info [ "loopnest" ]
          ~doc:
            "Make the Mini frontend thread loop-nest-shaped fragments \
             (bounded nests with cross-iteration array carries) through \
             its programs, exercising the DOACROSS sync path.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a fuzzing campaign")
    Term.(
      ret
        (const run_cmd $ gen_t $ seed_t $ count_t $ policy_t $ loopnest_t
       $ corpus_t $ budget_t $ shrink_t))

let replay_t =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A repro file from a previous campaign.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run the oracle on a saved repro")
    Term.(ret (const replay_cmd $ file_t $ policy_t))

let main_cmd =
  let doc = "differential fuzzing for the PolyFlow reproduction" in
  Cmd.group (Cmd.info "polyflow_fuzz" ~doc) [ run_t; replay_t ]

let () = exit (Cmd.eval main_cmd)
