(* polyflow_sim: tooling around the PolyFlow reproduction.

   Subcommands:
     run        simulate a workload under one or all spawn policies
     list       list the available workloads
     disasm     disassemble a workload binary
     spawns     show classified spawn points and Figure-5 statistics
     callgraph  print the static call graph
     limits     Lam & Wilson-style ILP limits for a workload window
     cfg        dump a procedure's CFG (optionally as graphviz)

   Examples:
     polyflow_sim run -w twolf -p postdoms
     polyflow_sim run -w mcf --all-policies --window 30000
     polyflow_sim spawns -w perlbmk
     polyflow_sim cfg -w twolf --proc new_dbox_a --dot *)

let policy_of_string s =
  let cat = function
    | "loop" -> Some Pf_core.Spawn_point.Loop_iter
    | "loopFT" -> Some Pf_core.Spawn_point.Loop_ft
    | "procFT" -> Some Pf_core.Spawn_point.Proc_ft
    | "hammock" -> Some Pf_core.Spawn_point.Hammock
    | "other" -> Some Pf_core.Spawn_point.Other
    | _ -> None
  in
  match s with
  | "superscalar" | "baseline" -> Ok Pf_core.Policy.No_spawn
  | "postdoms" -> Ok Pf_core.Policy.Postdoms
  | "rec_pred" -> Ok Pf_core.Policy.Rec_pred
  | "dmt" -> Ok Pf_core.Policy.Dmt
  | _ when String.length s > 9 && String.sub s 0 9 = "postdoms-" -> (
      match cat (String.sub s 9 (String.length s - 9)) with
      | Some c -> Ok (Pf_core.Policy.Postdoms_minus c)
      | None -> Error (`Msg (Printf.sprintf "unknown category in %S" s)))
  | _ -> (
      let parts = String.split_on_char '+' s in
      let cats = List.map cat parts in
      if List.for_all Option.is_some cats then
        Ok (Pf_core.Policy.Categories (List.filter_map Fun.id cats))
      else
        Error
          (`Msg
             (Printf.sprintf
                "unknown policy %S (try: superscalar, loop, loopFT, procFT, \
                 hammock, other, postdoms, rec_pred, dmt, postdoms-<cat>, or \
                 combinations like loop+loopFT)"
                s)))

let with_workload name f =
  match Pf_workloads.Suite.find name with
  | Some w -> f w
  | None ->
      `Error (false, Printf.sprintf "unknown workload %S (try `list')" name)

let prepare ?window (w : Pf_workloads.Workload.t) =
  let window =
    match window with Some n -> n | None -> w.Pf_workloads.Workload.window
  in
  Pf_uarch.Run.prepare w.Pf_workloads.Workload.program
    ~setup:w.Pf_workloads.Workload.setup
    ~fast_forward:w.Pf_workloads.Workload.fast_forward ~window

(* ---- run ---- *)

let report ~verbose name policy base m =
  let open Pf_uarch in
  Format.printf "%-10s %-22s IPC %5.3f" name (Pf_core.Policy.name policy)
    (Metrics.ipc m);
  (match base with
  | Some b when b != m ->
      Format.printf "  speedup %+6.1f%%" (Metrics.speedup_pct ~baseline:b m)
  | _ -> ());
  Format.printf "@.";
  if verbose then Format.printf "%a@." Metrics.pp m

let run_cmd workload_name policy_str all_policies window verbose =
  with_workload workload_name (fun w ->
      let prep = prepare ?window w in
      Format.printf
        "workload %s: %d instructions in window, %d static spawn points@."
        w.Pf_workloads.Workload.name
        (Pf_trace.Tracer.length prep.Pf_uarch.Run.trace)
        (List.length prep.Pf_uarch.Run.all_spawns);
      let base = Pf_uarch.Run.baseline prep in
      report ~verbose w.Pf_workloads.Workload.name Pf_core.Policy.No_spawn None
        base;
      let run_one policy =
        let m = Pf_uarch.Run.simulate prep ~policy in
        report ~verbose w.Pf_workloads.Workload.name policy (Some base) m
      in
      if all_policies then begin
        let policies =
          Pf_core.Policy.figure9_policies
          @ [ Pf_core.Policy.Rec_pred; Pf_core.Policy.Dmt ]
          @ List.filter
              (fun p -> p <> Pf_core.Policy.Postdoms)
              Pf_core.Policy.figure10_policies
          @ Pf_core.Policy.figure11_policies
        in
        List.iter run_one policies;
        `Ok ()
      end
      else
        match policy_of_string policy_str with
        | Ok Pf_core.Policy.No_spawn -> `Ok () (* already printed *)
        | Ok policy ->
            run_one policy;
            `Ok ()
        | Error (`Msg m) -> `Error (false, m))

(* ---- list ---- *)

let list_cmd () =
  Format.printf "@[<v>Workloads:@,";
  List.iter
    (fun w ->
      Format.printf "  %-10s %s@," w.Pf_workloads.Workload.name
        w.Pf_workloads.Workload.description)
    (Pf_workloads.Suite.all ());
  Format.printf "@]%!";
  `Ok ()

(* ---- disasm ---- *)

let disasm_cmd workload_name =
  with_workload workload_name (fun w ->
      Format.printf "%a@." Pf_isa.Program.pp w.Pf_workloads.Workload.program;
      `Ok ())

(* ---- spawns ---- *)

let spawns_cmd workload_name =
  with_workload workload_name (fun w ->
      let program = w.Pf_workloads.Workload.program in
      let spawns = Pf_core.Classify.spawn_points program in
      List.iter
        (fun s ->
          Format.printf "  %-30s (at: %s)@."
            (Format.asprintf "%a" Pf_core.Spawn_point.pp s)
            (Pf_isa.Instr.to_string
               (Pf_isa.Program.fetch program s.Pf_core.Spawn_point.at_pc)))
        spawns;
      Format.printf "@.%a@."
        Pf_core.Static_stats.pp
        (Pf_core.Static_stats.of_spawns spawns);
      `Ok ())

(* ---- callgraph ---- *)

let callgraph_cmd workload_name =
  with_workload workload_name (fun w ->
      Format.printf "%a@." Pf_isa.Call_graph.pp
        (Pf_isa.Call_graph.build w.Pf_workloads.Workload.program);
      `Ok ())

(* ---- limits ---- *)

let limits_cmd workload_name window =
  with_workload workload_name (fun w ->
      let prep = prepare ?window w in
      let tr = prep.Pf_uarch.Run.trace in
      let sf = Pf_trace.Limits.single_flow_ipc tr in
      let df = Pf_trace.Limits.dataflow_ipc tr in
      Format.printf
        "%s: single-flow limit %.2f IPC, control-independence oracle %.2f IPC \
         (%.1fx)@."
        w.Pf_workloads.Workload.name sf df (df /. sf);
      `Ok ())

(* ---- cfg ---- *)

let cfg_cmd workload_name proc_name dot =
  with_workload workload_name (fun w ->
      let program = w.Pf_workloads.Workload.program in
      let pcfgs = Pf_isa.Cfg_build.build_all program in
      let chosen =
        match proc_name with
        | Some n ->
            List.filter
              (fun p -> p.Pf_isa.Cfg_build.proc.Pf_isa.Program.name = n)
              pcfgs
        | None -> pcfgs
      in
      if chosen = [] then
        `Error (false, Printf.sprintf "no such procedure %S" (Option.value proc_name ~default:""))
      else begin
        List.iter
          (fun p ->
            let label b =
              let info = p.Pf_isa.Cfg_build.blocks.(b) in
              if info.Pf_isa.Cfg_build.first_pc < 0 then "exit"
              else Printf.sprintf "%x..%x" info.Pf_isa.Cfg_build.first_pc
                     info.Pf_isa.Cfg_build.last_pc
            in
            Format.printf "== %s ==@." p.Pf_isa.Cfg_build.proc.Pf_isa.Program.name;
            if dot then Format.printf "%a@." (Pf_cfg.Dot.cfg ~label) p.Pf_isa.Cfg_build.cfg
            else Format.printf "%a@." Pf_cfg.Cfg.pp p.Pf_isa.Cfg_build.cfg)
          chosen;
        `Ok ()
      end)

(* ---- parse: reassemble a textual listing ---- *)

let parse_cmd path =
  let text =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Pf_isa.Parse.program_of_string text with
  | Ok p ->
      Format.printf
        "parsed %d instructions, %d procedures; entry %04x@."
        (Pf_isa.Program.length p)
        (List.length p.Pf_isa.Program.procs)
        p.Pf_isa.Program.entry_pc;
      let spawns = Pf_core.Classify.spawn_points p in
      Format.printf "%d spawn points: %a@." (List.length spawns)
        Pf_core.Static_stats.pp
        (Pf_core.Static_stats.of_spawns spawns);
      `Ok ()
  | Error e -> `Error (false, e)

(* ---- cmdliner wiring ---- *)

open Cmdliner

let workload_t =
  Arg.(
    value
    & opt string "twolf"
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let window_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"N" ~doc:"Override the simulation window size.")

let run_c =
  let policy_t =
    Arg.(
      value
      & opt string "postdoms"
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:
            "Spawn policy: superscalar, loop, loopFT, procFT, hammock, other, \
             postdoms, rec_pred, dmt, postdoms-<category>, or a + combination.")
  in
  let all_policies_t =
    Arg.(
      value & flag
      & info [ "all-policies" ] ~doc:"Run every policy of Figures 9-12.")
  in
  let verbose_t =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print full metrics.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a workload under spawn policies")
    Term.(
      ret (const run_cmd $ workload_t $ policy_t $ all_policies_t $ window_t
           $ verbose_t))

let list_c =
  Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(ret (const list_cmd $ const ()))

let disasm_c =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload binary")
    Term.(ret (const disasm_cmd $ workload_t))

let spawns_c =
  Cmd.v
    (Cmd.info "spawns" ~doc:"Show classified spawn points (Figure 5 data)")
    Term.(ret (const spawns_cmd $ workload_t))

let callgraph_c =
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Print the static call graph")
    Term.(ret (const callgraph_cmd $ workload_t))

let limits_c =
  Cmd.v
    (Cmd.info "limits" ~doc:"Lam & Wilson-style ILP limits")
    Term.(ret (const limits_cmd $ workload_t $ window_t))

let cfg_c =
  let proc_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "proc" ] ~docv:"NAME" ~doc:"Restrict to one procedure.")
  in
  let dot_t = Arg.(value & flag & info [ "dot" ] ~doc:"Emit graphviz.") in
  Cmd.v
    (Cmd.info "cfg" ~doc:"Dump per-procedure control flow graphs")
    Term.(ret (const cfg_cmd $ workload_t $ proc_t $ dot_t))

let parse_c =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Assembly listing (disasm output format).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse an assembly listing and analyse it")
    Term.(ret (const parse_cmd $ file_t))

let main_cmd =
  let doc = "PolyFlow speculative-parallelization simulator and tooling" in
  Cmd.group
    ~default:Term.(ret (const list_cmd $ const ()))
    (Cmd.info "polyflow_sim" ~doc)
    [ run_c; list_c; disasm_c; spawns_c; callgraph_c; limits_c; cfg_c; parse_c ]

let () = exit (Cmd.eval main_cmd)
