(* polyflow_sim: tooling around the PolyFlow reproduction.

   Subcommands:
     run        simulate a workload under one or all spawn policies
     report     render tables from a saved BENCH_*.json report document
     list       list the available workloads
     disasm     disassemble a workload binary
     spawns     show classified spawn points and Figure-5 statistics
     callgraph  print the static call graph
     limits     Lam & Wilson-style ILP limits for a workload window
     cfg        dump a procedure's CFG (optionally as graphviz)

   Examples:
     polyflow_sim run -w twolf -p postdoms
     polyflow_sim run -w mcf --all-policies --window 30000 --json mcf.json
     polyflow_sim report BENCH_sweep.json
     polyflow_sim spawns -w perlbmk
     polyflow_sim cfg -w twolf --proc new_dbox_a --dot *)

let with_workload name f =
  match Pf_workloads.Suite.find name with
  | Some w -> f w
  | None ->
      `Error (false, Printf.sprintf "unknown workload %S (try `list')" name)

let prepare ?store ?window (w : Pf_workloads.Workload.t) =
  let window =
    match window with Some n -> n | None -> w.Pf_workloads.Workload.window
  in
  Pf_uarch.Run.prepare ?store w.Pf_workloads.Workload.program
    ~setup:w.Pf_workloads.Workload.setup
    ~fast_forward:w.Pf_workloads.Workload.fast_forward ~window

(* ---- run ---- *)

let print_run ~verbose name policy base m =
  let open Pf_uarch in
  Format.printf "%-10s %-22s IPC %.3f" name (Pf_core.Policy.name policy)
    (Metrics.ipc m);
  (match base with
  | Some b when b != m ->
      Format.printf "  speedup %+6.1f%%" (Metrics.speedup_pct ~baseline:b m)
  | _ -> ());
  Format.printf "@.";
  if verbose then Format.printf "%a@." Metrics.pp m

let run_cmd workload_name policy_str all_policies window trace_store_dir
    json_out cpi_stack chrome_out verbose =
  if all_policies && chrome_out <> None then
    `Error (false, "--chrome-trace records one run; drop --all-policies")
  else
  with_workload workload_name (fun w ->
      let store =
        Option.map
          (fun dir -> Pf_trace.Trace_store.create ~dir ())
          trace_store_dir
      in
      let t_start = Unix.gettimeofday () in
      let prep = prepare ?store ?window w in
      let prepare_s = Unix.gettimeofday () -. t_start in
      let name = w.Pf_workloads.Workload.name in
      let instructions = Pf_trace.Tracer.length prep.Pf_uarch.Run.trace in
      let static_spawns = List.length prep.Pf_uarch.Run.all_spawns in
      let effective_window =
        match window with
        | Some n -> n
        | None -> w.Pf_workloads.Workload.window
      in
      Format.printf
        "workload %s: %d instructions in window, %d static spawn points \
         (prepared in %.3f s, shared by every policy)@."
        name instructions static_spawns prepare_s;
      let records = ref [] in
      let run_one ?base ?(record_trace = false) policy =
        let config =
          match policy with
          | Pf_core.Policy.No_spawn -> Pf_uarch.Config.superscalar
          | Pf_core.Policy.Adaptive -> Pf_uarch.Config.adaptive
          | Pf_core.Policy.Doacross -> Pf_uarch.Config.doacross
          | _ -> Pf_uarch.Config.polyflow
        in
        (* observability: attach only the sinks asked for, so a plain
           run still goes through the engine's null-sink fast path *)
        let counters = Pf_obs.Counters.create () in
        let cpi = if cpi_stack then Some (Pf_obs.Cpi_stack.create ()) else None in
        let chrome =
          if record_trace then Some (Pf_obs.Chrome_trace.create ()) else None
        in
        let sink =
          List.fold_left Pf_obs.Sink.tee Pf_obs.Sink.null
            (List.filter_map Fun.id
               [ Option.map Pf_obs.Cpi_stack.sink cpi;
                 Option.map Pf_obs.Chrome_trace.sink chrome ])
        in
        let t0 = Unix.gettimeofday () in
        let m = Pf_uarch.Run.simulate ~sink ~counters ~config prep ~policy in
        let simulate_s = Unix.gettimeofday () -. t0 in
        if verbose then
          Format.printf "  %-22s simulate %.3f s@."
            (Pf_core.Policy.name policy) simulate_s;
        records :=
          { Pf_report.Sweep.workload = name;
            label = Pf_core.Policy.name policy;
            policy = Pf_core.Policy.name policy;
            config;
            window = effective_window;
            instructions;
            static_spawns;
            wall_s = simulate_s;
            metrics = m;
            counters = Pf_obs.Counters.to_alist counters }
          :: !records;
        print_run ~verbose name policy base m;
        if verbose && Pf_core.Policy.uses_safety_filter policy then begin
          (* the tracker's story lives in the counter registry, not in
             Metrics: violation rate per 10k retired instructions plus
             the safety filter's per-spawn level decisions *)
          let c n = Option.value ~default:0 (Pf_obs.Counters.find counters n) in
          Format.printf
            "mem tracker       violations %d (%.2f per 10k instrs), syncs %d@.\
             safety levels     bypass %d, conservative %d, optimistic %d@."
            (c "mem_violations")
            (float_of_int (c "mem_violations")
            *. 10_000.
            /. float_of_int (max 1 m.Pf_uarch.Metrics.instructions))
            (c "mem_syncs") (c "level_bypass")
            (c "level_conservative")
            (c "level_optimistic")
        end;
        (match cpi with
        | Some c ->
            Format.printf "@[<v>CPI stack, %s / %s (cycles per task slot):@,%a@]@."
              name (Pf_core.Policy.name policy) Pf_obs.Cpi_stack.pp c;
            for s = 0 to Pf_obs.Cpi_stack.slots c - 1 do
              if Pf_obs.Cpi_stack.slot_total c s <> m.Pf_uarch.Metrics.cycles
              then
                Format.printf
                  "WARNING: slot %d accounts for %d of %d cycles@." s
                  (Pf_obs.Cpi_stack.slot_total c s)
                  m.Pf_uarch.Metrics.cycles
            done
        | None -> ());
        (match (chrome, chrome_out) with
        | Some tr, Some path ->
            Pf_obs.Chrome_trace.save tr ~cycles:m.Pf_uarch.Metrics.cycles path;
            Format.printf
              "wrote Chrome trace (%d task spans) to %s — load in \
               ui.perfetto.dev or chrome://tracing@."
              (Pf_obs.Chrome_trace.spans tr) path
        | _ -> ());
        m
      in
      (* --chrome-trace records the requested policy's run; when that is
         the superscalar itself, the baseline run carries the sink *)
      let trace_baseline =
        chrome_out <> None
        && Pf_core.Policy.of_string policy_str = Ok Pf_core.Policy.No_spawn
      in
      let base = run_one ~record_trace:trace_baseline Pf_core.Policy.No_spawn in
      let result =
        if all_policies then begin
          let policies =
            Pf_core.Policy.figure9_policies
            @ [ Pf_core.Policy.Rec_pred; Pf_core.Policy.Dmt;
                Pf_core.Policy.Adaptive; Pf_core.Policy.Doacross ]
            @ List.filter
                (fun p -> p <> Pf_core.Policy.Postdoms)
                Pf_core.Policy.figure10_policies
            @ Pf_core.Policy.figure11_policies
          in
          List.iter (fun p -> ignore (run_one ~base p)) policies;
          `Ok ()
        end
        else
          match Pf_core.Policy.of_string policy_str with
          | Ok Pf_core.Policy.No_spawn -> `Ok () (* already printed *)
          | Ok policy ->
              ignore
                (run_one ~base ~record_trace:(chrome_out <> None) policy);
              `Ok ()
          | Error m -> `Error (false, m)
      in
      (match (result, json_out) with
      | `Ok (), Some path ->
          let doc =
            Pf_report.Sweep.document
              ~tool:(String.concat " " (Array.to_list Sys.argv))
              ~jobs:1
              ~wall_s:(Unix.gettimeofday () -. t_start)
              (List.rev !records)
          in
          Pf_report.Sweep.save path doc;
          Format.printf "wrote %d runs to %s (schema %d)@."
            (List.length doc.Pf_report.Sweep.runs)
            path Pf_report.Manifest.schema_version
      | _ -> ());
      result)

(* ---- report ---- *)

let label_set (doc : Pf_report.Sweep.t) =
  List.sort_uniq compare
    (List.map (fun (r : Pf_report.Sweep.run) -> r.Pf_report.Sweep.label)
       doc.Pf_report.Sweep.runs)

let report_cmd path csv_out =
  match Pf_report.Sweep.load path with
  | exception Sys_error m -> `Error (false, m)
  | exception Pf_report.Json.Parse_error (off, m) ->
      `Error (false, Printf.sprintf "%s: JSON syntax error at byte %d: %s" path off m)
  | exception Pf_report.Json.Decode_error m ->
      `Error (false, Printf.sprintf "%s: not a report document: %s" path m)
  | doc ->
      let out = Format.std_formatter in
      Format.fprintf out "%s: %a@." path Pf_report.Manifest.pp
        doc.Pf_report.Sweep.manifest;
      let workloads = Pf_report.Table.workloads doc in
      let labels = label_set doc in
      Format.fprintf out "%d runs · %d workloads · %d labels@.@."
        (List.length doc.Pf_report.Sweep.runs)
        (List.length workloads) (List.length labels);
      let have label = List.mem label labels in
      let figure title policies =
        let wanted = List.map Pf_core.Policy.name policies in
        if List.for_all have wanted
           && List.exists (fun l -> l <> Pf_report.Table.baseline_label) wanted
        then begin
          Format.fprintf out "%s@." title;
          Pf_report.Table.print_speedup_table ~out ~workloads ~labels:wanted doc;
          Format.fprintf out "@."
        end
      in
      if have Pf_report.Table.baseline_label then begin
        figure
          "Figure 9: Individual heuristic policies (speedup over the \
           superscalar)"
          Pf_core.Policy.figure9_policies;
        figure "Figure 10: Combinations of heuristics"
          Pf_core.Policy.figure10_policies;
        figure "Figure 12: Reconvergence-predictor spawning"
          Pf_core.Policy.figure12_policies;
        Format.fprintf out "All labels, average speedup over the superscalar:@.";
        Pf_report.Table.print_average_table ~out doc
      end
      else
        Format.fprintf out
          "(no %S runs in the document — speedup tables unavailable)@."
          Pf_report.Table.baseline_label;
      (match csv_out with
      | Some csv_path ->
          let oc = open_out csv_path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Pf_report.Sweep.to_csv doc));
          Format.fprintf out "@.wrote CSV to %s@." csv_path
      | None -> ());
      `Ok ()

(* ---- list ---- *)

let list_cmd () =
  Format.printf "@[<v>Workloads:@,";
  List.iter
    (fun w ->
      Format.printf "  %-10s %s@," w.Pf_workloads.Workload.name
        w.Pf_workloads.Workload.description)
    (Pf_workloads.Suite.all ());
  Format.printf "@]%!";
  `Ok ()

(* ---- disasm ---- *)

let disasm_cmd workload_name =
  with_workload workload_name (fun w ->
      Format.printf "%a@." Pf_isa.Program.pp w.Pf_workloads.Workload.program;
      `Ok ())

(* ---- spawns ---- *)

let spawns_cmd workload_name =
  with_workload workload_name (fun w ->
      let program = w.Pf_workloads.Workload.program in
      let spawns = Pf_core.Classify.spawn_points program in
      List.iter
        (fun s ->
          Format.printf "  %-30s (at: %s)@."
            (Format.asprintf "%a" Pf_core.Spawn_point.pp s)
            (Pf_isa.Instr.to_string
               (Pf_isa.Program.fetch program s.Pf_core.Spawn_point.at_pc)))
        spawns;
      Format.printf "@.%a@."
        Pf_core.Static_stats.pp
        (Pf_core.Static_stats.of_spawns spawns);
      `Ok ())

(* ---- callgraph ---- *)

let callgraph_cmd workload_name =
  with_workload workload_name (fun w ->
      Format.printf "%a@." Pf_isa.Call_graph.pp
        (Pf_isa.Call_graph.build w.Pf_workloads.Workload.program);
      `Ok ())

(* ---- limits ---- *)

let limits_cmd workload_name window =
  with_workload workload_name (fun w ->
      let prep = prepare ?window w in
      let tr = prep.Pf_uarch.Run.trace in
      let sf = Pf_trace.Limits.single_flow_ipc tr in
      let df = Pf_trace.Limits.dataflow_ipc tr in
      Format.printf
        "%s: single-flow limit %.2f IPC, control-independence oracle %.2f IPC \
         (%.1fx)@."
        w.Pf_workloads.Workload.name sf df (df /. sf);
      `Ok ())

(* ---- cfg ---- *)

let cfg_cmd workload_name proc_name dot =
  with_workload workload_name (fun w ->
      let program = w.Pf_workloads.Workload.program in
      let pcfgs = Pf_isa.Cfg_build.build_all program in
      let chosen =
        match proc_name with
        | Some n ->
            List.filter
              (fun p -> p.Pf_isa.Cfg_build.proc.Pf_isa.Program.name = n)
              pcfgs
        | None -> pcfgs
      in
      if chosen = [] then
        `Error (false, Printf.sprintf "no such procedure %S" (Option.value proc_name ~default:""))
      else begin
        List.iter
          (fun p ->
            let label b =
              let info = p.Pf_isa.Cfg_build.blocks.(b) in
              if info.Pf_isa.Cfg_build.first_pc < 0 then "exit"
              else Printf.sprintf "%x..%x" info.Pf_isa.Cfg_build.first_pc
                     info.Pf_isa.Cfg_build.last_pc
            in
            Format.printf "== %s ==@." p.Pf_isa.Cfg_build.proc.Pf_isa.Program.name;
            if dot then Format.printf "%a@." (Pf_cfg.Dot.cfg ~label) p.Pf_isa.Cfg_build.cfg
            else Format.printf "%a@." Pf_cfg.Cfg.pp p.Pf_isa.Cfg_build.cfg)
          chosen;
        `Ok ()
      end)

(* ---- parse: reassemble a textual listing ---- *)

let parse_cmd path =
  let text =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Pf_isa.Parse.program_of_string text with
  | Ok p ->
      Format.printf
        "parsed %d instructions, %d procedures; entry %04x@."
        (Pf_isa.Program.length p)
        (List.length p.Pf_isa.Program.procs)
        p.Pf_isa.Program.entry_pc;
      let spawns = Pf_core.Classify.spawn_points p in
      Format.printf "%d spawn points: %a@." (List.length spawns)
        Pf_core.Static_stats.pp
        (Pf_core.Static_stats.of_spawns spawns);
      `Ok ()
  | Error e -> `Error (false, e)

(* ---- cmdliner wiring ---- *)

open Cmdliner

let workload_t =
  Arg.(
    value
    & opt string "twolf"
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let window_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"N" ~doc:"Override the simulation window size.")

let run_c =
  let policy_t =
    Arg.(
      value
      & opt string "postdoms"
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:
            "Spawn policy: superscalar, loop, loopFT, procFT, hammock, other, \
             postdoms, rec_pred, dmt, adaptive, postdoms-<category>, or a + \
             combination.")
  in
  let all_policies_t =
    Arg.(
      value & flag
      & info [ "all-policies" ] ~doc:"Run every policy of Figures 9-12.")
  in
  let verbose_t =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print full metrics.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also save the runs as a schema-versioned report document \
             (docs/REPORT_SCHEMA.md), renderable with the $(b,report) \
             subcommand.")
  in
  let cpi_t =
    Arg.(
      value & flag
      & info [ "cpi-stack" ]
          ~doc:
            "Attach the cycle-accounting sink and print a CPI-stack table \
             per run: every cycle of every task slot attributed to one loss \
             source (docs/OBSERVABILITY.md).")
  in
  let chrome_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Record the requested policy's run as a Chrome/Perfetto \
             trace_event JSON file: one track per task slot, flow arrows \
             for spawns, instants for squashes. Open in ui.perfetto.dev or \
             chrome://tracing. Incompatible with $(b,--all-policies).")
  in
  let trace_store_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-store" ] ~docv:"DIR"
          ~doc:
            "Prepare the window through a persistent trace store in              $(docv) (created on demand): repeat invocations load the              captured window from disk instead of re-interpreting the              fast-forward prefix. Results are byte-identical either way.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a workload under spawn policies")
    Term.(
      ret (const run_cmd $ workload_t $ policy_t $ all_policies_t $ window_t
           $ trace_store_t $ json_t $ cpi_t $ chrome_t $ verbose_t))

let report_c =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Report document (BENCH_*.json).")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also export every run as CSV.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render Figure-9/10/12-style tables from a saved report document")
    Term.(ret (const report_cmd $ file_t $ csv_t))

let list_c =
  Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(ret (const list_cmd $ const ()))

let disasm_c =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload binary")
    Term.(ret (const disasm_cmd $ workload_t))

let spawns_c =
  Cmd.v
    (Cmd.info "spawns" ~doc:"Show classified spawn points (Figure 5 data)")
    Term.(ret (const spawns_cmd $ workload_t))

let callgraph_c =
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Print the static call graph")
    Term.(ret (const callgraph_cmd $ workload_t))

let limits_c =
  Cmd.v
    (Cmd.info "limits" ~doc:"Lam & Wilson-style ILP limits")
    Term.(ret (const limits_cmd $ workload_t $ window_t))

let cfg_c =
  let proc_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "proc" ] ~docv:"NAME" ~doc:"Restrict to one procedure.")
  in
  let dot_t = Arg.(value & flag & info [ "dot" ] ~doc:"Emit graphviz.") in
  Cmd.v
    (Cmd.info "cfg" ~doc:"Dump per-procedure control flow graphs")
    Term.(ret (const cfg_cmd $ workload_t $ proc_t $ dot_t))

let parse_c =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Assembly listing (disasm output format).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse an assembly listing and analyse it")
    Term.(ret (const parse_cmd $ file_t))

let main_cmd =
  let doc = "PolyFlow speculative-parallelization simulator and tooling" in
  Cmd.group
    ~default:Term.(ret (const list_cmd $ const ()))
    (Cmd.info "polyflow_sim" ~doc)
    [ run_c; report_c; list_c; disasm_c; spawns_c; callgraph_c; limits_c;
      cfg_c; parse_c ]

let () = exit (Cmd.eval main_cmd)
