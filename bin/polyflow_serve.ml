(* polyflow_serve: the simulation-as-a-service daemon.

   Binds a Unix-domain socket, speaks the newline-delimited JSON
   protocol of docs/SERVING.md, serves repeated runs from the sharded
   LRU run cache and schedules misses on a persistent domain pool with
   warm engine scratch. Window preparation goes through the persistent
   trace store (--trace-store), so a daemon restarted over a populated
   store skips re-interpreting fast-forward prefixes. An optional HTTP/1.1 shim on 127.0.0.1 carries
   the same requests for curl and health checks.

   Examples:
     polyflow_serve --socket /tmp/polyflow.sock
     polyflow_serve --socket /tmp/polyflow.sock --jobs 4 --cache-cap 256
     polyflow_serve --socket /tmp/polyflow.sock --http-port 8080 \
       --prewarm 4000,30000 --timeout-ms 60000 *)

let parse_prewarm s =
  if String.trim s = "" then Ok []
  else
    try
      Ok
        (List.map
           (fun w ->
             let n = int_of_string (String.trim w) in
             if n <= 0 then failwith "non-positive";
             n)
           (String.split_on_char ',' s))
    with _ -> Error (Printf.sprintf "bad --prewarm %S: expected N[,N...]" s)

let serve socket_path http_port jobs cache_dir no_cache cache_cap
    trace_store_dir no_trace_store trace_store_cap timeout_ms prewarm
    no_shutdown verbose =
  match parse_prewarm prewarm with
  | Error m -> `Error (false, m)
  | Ok prewarm_windows -> (
      if jobs < 1 then `Error (false, "--jobs must be at least 1")
      else if cache_cap < 0 then `Error (false, "--cache-cap must be >= 0")
      else if trace_store_cap < 0 then
        `Error (false, "--trace-store-cap must be >= 0")
      else
        let cfg =
          { (Pf_serve.Server.default_config ~socket_path) with
            http_port;
            jobs;
            cache_dir = (if no_cache then None else Some cache_dir);
            cache_cap;
            trace_store_dir =
              (if no_trace_store then None else Some trace_store_dir);
            trace_store_cap;
            default_timeout_ms = timeout_ms;
            prewarm_windows;
            allow_shutdown = not no_shutdown;
            verbose }
        in
        match Pf_serve.Server.start cfg with
        | exception Invalid_argument m -> `Error (false, m)
        | exception Unix.Unix_error (e, fn, arg) ->
            `Error
              ( false,
                Printf.sprintf "cannot bind %s: %s (%s %s)" socket_path
                  (Unix.error_message e) fn arg )
        | t ->
            let stop _ = Pf_serve.Server.request_stop t in
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
            (* scripts (CI's serve-smoke job) wait for this line before
               sending requests *)
            Printf.printf "polyflow_serve: ready on %s%s\n%!" socket_path
              (match Pf_serve.Server.http_port t with
              | Some p -> Printf.sprintf " (http 127.0.0.1:%d)" p
              | None -> "");
            Pf_serve.Server.run t;
            Printf.printf "polyflow_serve: stopped\n%!";
            `Ok ())

open Cmdliner

let socket_t =
  Arg.(
    value
    & opt string "polyflow.sock"
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on.")

let http_port_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "http-port" ] ~docv:"PORT"
        ~doc:
          "Also serve the HTTP/1.1 shim on 127.0.0.1:$(docv) (0 picks a \
           free port). POST /run, GET /stats, GET /healthz; shutdown is \
           never reachable over HTTP.")

let jobs_t =
  Arg.(
    value
    & opt int (max 1 (min 8 (Domain.recommended_domain_count () - 1)))
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains in the simulation pool.")

let cache_dir_t =
  Arg.(
    value
    & opt string "_cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Run-cache directory (created on demand, parents included; \
           entries are sharded by digest prefix).")

let no_cache_t =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the run cache entirely; every request simulates.")

let cache_cap_t =
  Arg.(
    value & opt int 0
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:
          "Evict least-recently-used cache entries beyond $(docv) \
           (0 = unbounded).")

let trace_store_dir_t =
  Arg.(
    value
    & opt string "_tstore"
    & info [ "trace-store" ] ~docv:"DIR"
        ~doc:
          "Persistent trace-store directory for the two-level window            preparation cache (created on demand). Point successive boots            at the same directory and cold windows load from disk instead            of re-interpreting the fast-forward prefix; replies are            byte-identical either way.")

let no_trace_store_t =
  Arg.(
    value & flag
    & info [ "no-trace-store" ]
        ~doc:"Disable the trace store; every window prepares from scratch.")

let trace_store_cap_t =
  Arg.(
    value & opt int 0
    & info [ "trace-store-cap" ] ~docv:"N"
        ~doc:
          "Evict least-recently-used trace-store entries beyond $(docv)            (0 = unbounded).")

let timeout_ms_t =
  Arg.(
    value & opt int 0
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline for requests that do not carry \
           their own timeout_ms (0 = wait forever). A timed-out request \
           gets a timeout error; its simulation still finishes and lands \
           in the cache.")

let prewarm_t =
  Arg.(
    value & opt string ""
    & info [ "prewarm" ] ~docv:"N[,N...]"
        ~doc:
          "Window sizes whose engine scratch every worker pre-allocates \
           at boot, so the first request of each size skips the cold \
           allocation.")

let no_shutdown_t =
  Arg.(
    value & flag
    & info [ "no-shutdown" ]
        ~doc:
          "Refuse the shutdown op over the socket; stop with SIGINT or \
           SIGTERM only.")

let verbose_t =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log lifecycle events.")

let cmd =
  Cmd.v
    (Cmd.info "polyflow_serve"
       ~doc:"PolyFlow simulation-as-a-service daemon (docs/SERVING.md)")
    Term.(
      ret
        (const serve $ socket_t $ http_port_t $ jobs_t $ cache_dir_t
       $ no_cache_t $ cache_cap_t $ trace_store_dir_t $ no_trace_store_t
       $ trace_store_cap_t $ timeout_ms_t $ prewarm_t $ no_shutdown_t
       $ verbose_t))

let () = exit (Cmd.eval cmd)
